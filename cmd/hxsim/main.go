// Command hxsim runs a single HyperX simulation and prints its metrics:
// the direct line into the simulator for ad-hoc studies.
//
// Examples:
//
//	hxsim -dims 8x8 -mech PolSP -pattern Uniform -load 0.7
//	hxsim -dims 8x8x8 -mech OmniSP -pattern RPN -load 1.0 -faults 50
//	hxsim -dims 4x4x4 -mech PolSP -pattern RPN -burst 100 -shape cross
//	hxsim -dims 8x8 -mech PolSP -loads 0.1,0.5,1.0 -cache-dir ~/.hxcache
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	hyperx "repro"
	"repro/internal/cliutil"
)

func main() {
	var (
		dimsFlag       = flag.String("dims", "8x8", "topology sides, e.g. 16x16 or 8x8x8")
		mechFlag       = flag.String("mech", "PolSP", "mechanism: Minimal|Valiant|OmniWAR|Polarized|DOR|OmniSP|PolSP")
		patFlag        = flag.String("pattern", "Uniform", "pattern: Uniform|RSP|DCR|RPN")
		loadFlag       = flag.Float64("load", 0.5, "offered load in phits/server/cycle (0,1]")
		loadsFlag      = flag.String("loads", "", "comma-separated load sweep, e.g. 0.1,0.5,1.0 (overrides -load)")
		vcsFlag        = flag.Int("vcs", 0, "virtual channels per port (0 = paper's 2n)")
		warmFlag       = flag.Int64("warmup", 3000, "warmup cycles")
		measFlag       = flag.Int64("measure", 6000, "measurement cycles")
		faultsFlag     = flag.Int("faults", 0, "random link failures to inject")
		shapeFlag      = flag.String("shape", "", "structured fault shape: row|subblock|cross (overrides -faults)")
		rootFlag       = flag.Int("root", 0, "escape subnetwork root switch (SurePath)")
		burstFlag      = flag.Int("burst", 0, "burst packets per server (completion-time mode)")
		seedFlag       = flag.Uint64("seed", 1, "random seed")
		serversFlag    = flag.Int("servers", 0, "servers per switch (0 = side k)")
		workersFlag    = flag.Int("workers", 0, "parallel workers for -loads sweeps (0 = one per CPU); results are identical for any value")
		runWorkersFlag = flag.Int("run-workers", -1, "intra-run workers per simulation (-1 = adaptive, 0 = one per CPU); results are identical for any value")
		cacheDirFlag   = flag.String("cache-dir", "", "content-addressed result cache directory; repeated runs of the same point hit the cache")
		ckptEveryFlag  = flag.Duration("checkpoint-every", 0, "snapshot the engine at this wall-clock interval so an interrupted run resumes instead of restarting (needs -checkpoint-dir or -cache-dir); SIGINT/SIGTERM checkpoint and stop")
		ckptCyclesFlag = flag.Int64("checkpoint-cycles", 0, "snapshot every N simulated cycles instead of on wall-clock time (deterministic trigger for tests)")
		ckptDirFlag    = flag.String("checkpoint-dir", "", "directory for checkpoint snapshots (default: the -cache-dir store)")
		noActivityFlag = flag.Bool("no-activity", false, "disable the engine's dirty-switch tracking and idle-cycle fast-forward (A/B baseline; results are identical either way)")
		legacyGenFlag  = flag.Bool("legacy-gen", false, "use the legacy per-cycle open-loop generation (engine "+hyperx.LegacyEngineVersion+") instead of the geometric arrival calendar; statistically equivalent but bit-different results, cached under the legacy version tag")
		memStatsFlag   = flag.Bool("mem-stats", false, "print the engine's memory accounting (arena bytes, bytes/switch, construction time) before running")
	)
	flag.Parse()
	hyperx.SetEngineActivity(!*noActivityFlag)
	hyperx.SetLegacyGeneration(*legacyGenFlag)

	workers, err := cliutil.ResolveWorkers(*workersFlag)
	check(err)
	if *runWorkersFlag < 0 {
		hyperx.SetAdaptiveRunWorkers()
	} else {
		runWorkers, err := cliutil.ResolveWorkers(*runWorkersFlag)
		check(err)
		hyperx.SetRunWorkers(hyperx.DefaultWorkers(runWorkers))
	}
	var store *hyperx.ResultCache
	if *cacheDirFlag != "" {
		store, err = hyperx.OpenResultCache(*cacheDirFlag)
		check(err)
		hyperx.SetResultCache(store)
	}
	if *ckptDirFlag != "" {
		cs, err := hyperx.OpenResultCache(*ckptDirFlag)
		check(err)
		hyperx.SetCheckpointStore(cs)
	}
	if *ckptEveryFlag > 0 || *ckptCyclesFlag > 0 {
		if *ckptDirFlag == "" && *cacheDirFlag == "" {
			check(fmt.Errorf("-checkpoint-every/-checkpoint-cycles need -checkpoint-dir or -cache-dir to store snapshots"))
		}
		hyperx.SetCheckpointPolicy(&hyperx.CheckpointPolicy{Every: *ckptEveryFlag, EveryCycles: *ckptCyclesFlag})
		// SIGINT/SIGTERM becomes a drain: every in-flight point snapshots
		// at its next inter-cycle boundary and the run stops resumable.
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigc
			fmt.Fprintln(os.Stderr, "hxsim: interrupted, checkpointing")
			hyperx.RequestDrain()
		}()
	}

	dims, err := cliutil.ParseDims(*dimsFlag)
	check(err)
	h, err := hyperx.NewTopology(dims...)
	check(err)
	per := *serversFlag
	if per == 0 {
		per = dims[0]
	}

	faults := hyperx.NewFaultSet()
	switch {
	case *shapeFlag != "":
		kind, err := cliutil.ParseShape(*shapeFlag)
		check(err)
		edges, err := hyperx.PaperShape(h, int32(*rootFlag), kind)
		check(err)
		faults.AddAll(edges)
	case *faultsFlag > 0:
		seq := hyperx.RandomFaultSequence(h, *seedFlag)
		if *faultsFlag > len(seq) {
			check(fmt.Errorf("at most %d links can fail", len(seq)))
		}
		faults.AddAll(seq[:*faultsFlag])
	}
	net := hyperx.NewNetwork(h, faults)
	if !net.Graph().Connected() {
		check(fmt.Errorf("the chosen faults disconnect the network"))
	}

	vcs := *vcsFlag
	if vcs == 0 {
		vcs = 2 * h.NDims()
	}
	mech, err := hyperx.NewMechanism(*mechFlag, net, vcs, int32(*rootFlag))
	check(err)
	pat, err := hyperx.NewPattern(*patFlag, h, per, *seedFlag)
	check(err)

	fmt.Printf("%s  servers/switch=%d  faults=%d  mech=%s  pattern=%s  vcs=%d\n",
		h, per, faults.Len(), mech.Name(), pat.Name(), vcs)

	loads := []float64{*loadFlag}
	if *loadsFlag != "" {
		loads, err = cliutil.ParseLoads(*loadsFlag)
		check(err)
	}
	if *burstFlag > 0 {
		loads = loads[:1] // burst mode ignores load: one completion-time run
	}
	// Each load point is an independent job spec: rebuilt privately per
	// run, so the sweep parallelizes (identical rows for any -workers
	// value) and points are content-addressable for -cache-dir.
	shape, err := hyperx.TopologySpecOf(h)
	check(err)
	specs := make([]hyperx.JobSpec, len(loads))
	for i, load := range loads {
		specs[i] = hyperx.JobSpec{
			Topo: shape, Mechanism: *mechFlag, Pattern: *patFlag,
			VCs: vcs, Root: int32(*rootFlag), Per: per,
			Load:        load,
			Budget:      hyperx.Budget{Warmup: *warmFlag, Measure: *measFlag},
			Faults:      faults.Edges(),
			Seed:        *seedFlag,
			PatternSeed: *seedFlag,
		}
		if *burstFlag > 0 {
			specs[i].BurstPackets = *burstFlag
			specs[i].SeriesBucket = 2000
		}
	}
	if *memStatsFlag {
		// Construction is load-independent, so one measurement covers the
		// whole sweep. Stderr, like the cache stats: stdout stays
		// byte-identical across runs (construction time is wall-clock).
		mem, err := specs[0].MeasureMemory()
		check(err)
		fmt.Fprintln(os.Stderr, mem)
	}
	results, err := hyperx.RunSpecs(workers, specs)
	if errors.Is(err, hyperx.ErrCheckpointed) {
		fmt.Fprintln(os.Stderr, "hxsim: checkpointed; rerun the same command to resume")
		os.Exit(3)
	}
	check(err)
	if store != nil {
		hits, misses := store.Stats()
		suffix := ""
		if healed := store.Healed(); healed > 0 {
			suffix = fmt.Sprintf(" (%d corrupt entries healed)", healed)
		}
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses%s\n", hits, misses, suffix)
	}
	for i, load := range loads {
		res := results[i]
		if *burstFlag > 0 {
			fmt.Printf("completion time     %d cycles\n", res.CompletionTime)
			for _, p := range res.Series {
				fmt.Printf("  t=%-8d accepted=%.3f\n", p.Cycle, p.Accepted)
			}
			return
		}
		if len(loads) > 1 {
			fmt.Printf("load %.2f: accepted %.3f  latency %.1f  jain %.4f  escape %.4f  util %.3f\n",
				load, res.AcceptedLoad, res.AvgLatency, res.JainIndex, res.EscapeFraction, res.LinkUtilization)
			continue
		}
		fmt.Printf("offered load        %.3f phits/server/cycle\n", res.OfferedLoad)
		fmt.Printf("accepted load       %.3f phits/server/cycle\n", res.AcceptedLoad)
		fmt.Printf("avg message latency %.1f cycles\n", res.AvgLatency)
		fmt.Printf("avg hops            %.2f\n", res.AvgHops)
		fmt.Printf("Jain index          %.4f\n", res.JainIndex)
		fmt.Printf("escape fraction     %.4f\n", res.EscapeFraction)
		fmt.Printf("link utilization    %.3f\n", res.LinkUtilization)
		fmt.Printf("delivered packets   %d\n", res.DeliveredPackets)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hxsim:", err)
		os.Exit(1)
	}
}
