// Routingcompare evaluates all six routing mechanisms of the paper's
// Table 4 on a 3D HyperX across the four traffic patterns of Section 4,
// printing the saturation throughput matrix — a miniature of Figure 5.
//
// The expected shape (the paper's key result): on benign traffic all
// adaptive mechanisms tie well above Valiant; on Dimension Complement
// Reverse, Valiant's 0.5 is optimal and Minimal collapses; on Regular
// Permutation to Neighbour, Omnidimensional routes are capped at 0.5 while
// Polarized routes break through it.
package main

import (
	"fmt"
	"log"

	hyperx "repro"
)

const (
	side    = 4
	servers = 4
	seed    = 3
)

func main() {
	h, err := hyperx.NewTopology(side, side, side)
	if err != nil {
		log.Fatal(err)
	}
	net := hyperx.NewNetwork(h, nil)
	vcs := 2 * h.NDims()

	patterns := hyperx.PatternNames(h.NDims())
	mechs := hyperx.MechanismNames()

	fmt.Printf("saturation throughput on %s (%d servers, %d VCs)\n\n", h, h.Switches()*servers, vcs)
	fmt.Printf("%-36s", "pattern \\ mechanism")
	for _, m := range mechs {
		fmt.Printf("%10s", m)
	}
	fmt.Println()

	for _, patName := range patterns {
		pattern, err := hyperx.NewPattern(patName, h, servers, seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s", patName)
		for _, mechName := range mechs {
			mech, err := hyperx.NewMechanism(mechName, net, vcs, 0)
			if err != nil {
				log.Fatal(err)
			}
			res, err := hyperx.Run(hyperx.RunOptions{
				Net:              net,
				ServersPerSwitch: servers,
				Mechanism:        mech,
				Pattern:          pattern,
				Load:             1.0,
				WarmupCycles:     1200,
				MeasureCycles:    2400,
				Seed:             seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%10.3f", res.AcceptedLoad)
		}
		fmt.Println()
	}

	fmt.Println("\nreading guide: rows are patterns, columns mechanisms;")
	fmt.Println("RPN is the paper's new pattern separating Polarized from Omnidimensional routes.")
}
