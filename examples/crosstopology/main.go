// Crosstopology reproduces the paper's Section 7 discussion as a runnable
// study: the SurePath mechanism is topology-agnostic (its tables come from
// BFS), so it boots unchanged on a HyperX, a Torus and a Dragonfly — but
// only HyperX hands the escape subnetwork near-minimal routes, so only
// there does the mechanism keep its performance.
package main

import (
	"fmt"
	"log"

	hyperx "repro"
)

const (
	servers = 4
	seed    = 21
)

func main() {
	hx, err := hyperx.NewTopology(4, 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	tor, err := hyperx.NewTorus(8, 8)
	if err != nil {
		log.Fatal(err)
	}
	df, err := hyperx.NewDragonfly(6, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SurePath (PolSP) across topologies, uniform traffic")
	fmt.Printf("%-30s %8s %9s %9s %9s\n", "topology", "switches", "load 0.15", "load 0.50", "escape%")
	for _, t := range []hyperx.Switched{hx, tor, df} {
		net := hyperx.NewNetwork(t, nil)
		low := run(net, t, 0.15)
		mid := run(net, t, 0.50)
		fmt.Printf("%-30s %8d %9.3f %9.3f %8.1f%%\n",
			t, t.Switches(), low.AcceptedLoad, mid.AcceptedLoad, 100*mid.EscapeFraction)
	}
	fmt.Println("\nHyperX keeps accepted ~= offered at both loads; the torus and dragonfly")
	fmt.Println("collapse into their (non-minimal) escape subnetworks at higher load --")
	fmt.Println("the \"more effort to adapt to other topologies\" of the paper's Section 7.")
}

func run(net *hyperx.Network, t hyperx.Switched, load float64) *hyperx.Result {
	mech, err := hyperx.NewMechanism("PolSP", net, 4, 0)
	if err != nil {
		log.Fatal(err)
	}
	u, err := hyperx.NewUniformPattern(t.Switches() * servers)
	if err != nil {
		log.Fatal(err)
	}
	res, err := hyperx.Run(hyperx.RunOptions{
		Net:              net,
		ServersPerSwitch: servers,
		Mechanism:        mech,
		Pattern:          u,
		Load:             load,
		WarmupCycles:     1000,
		MeasureCycles:    2000,
		Seed:             seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}
