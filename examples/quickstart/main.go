// Quickstart: simulate PolSP (Polarized routes + SurePath escape) on a
// fault-free 8x8 HyperX under uniform traffic and print the paper's three
// metrics. Runs in a few seconds.
package main

import (
	"fmt"
	"log"

	hyperx "repro"
)

func main() {
	// An 8x8 HyperX: 64 switches, 8 servers each (the paper attaches k
	// servers per switch).
	h, err := hyperx.NewTopology(8, 8)
	if err != nil {
		log.Fatal(err)
	}
	net := hyperx.NewNetwork(h, nil)

	// PolSP with the paper's 2n = 4 virtual channels; escape root at
	// switch 0.
	mech, err := hyperx.NewMechanism("PolSP", net, 4, 0)
	if err != nil {
		log.Fatal(err)
	}
	pattern, err := hyperx.NewPattern("Uniform", h, 8, 1)
	if err != nil {
		log.Fatal(err)
	}

	for _, load := range []float64{0.2, 0.5, 0.8} {
		res, err := hyperx.Run(hyperx.RunOptions{
			Net:              net,
			ServersPerSwitch: 8,
			Mechanism:        mech,
			Pattern:          pattern,
			Load:             load,
			WarmupCycles:     1500,
			MeasureCycles:    3000,
			Seed:             1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("offered %.1f -> accepted %.3f, latency %.1f cycles, Jain %.4f\n",
			load, res.AcceptedLoad, res.AvgLatency, res.JainIndex)
	}
}
