// Faultdrill plays the role of a datacenter reliability engineer: it
// subjects a HyperX fabric to escalating failure drills — growing random
// link failures, then the paper's structured worst-case shapes centred on
// the escape root — and reports how much throughput SurePath retains, the
// escape-subnetwork usage, and how the topology itself degrades.
//
// This is the paper's Section 6 study in miniature (Figures 6, 8, 9).
package main

import (
	"fmt"
	"log"

	hyperx "repro"
)

const (
	side    = 4 // 4x4x4 HyperX, 64 switches
	servers = 4
	vcs     = 4 // 3 routing + 1 escape, the paper's fault-study setting
	seed    = 7
)

func main() {
	h, err := hyperx.NewTopology(side, side, side)
	if err != nil {
		log.Fatal(err)
	}
	root := h.ID([]int{side / 2, side / 2, side / 2})
	pattern, err := hyperx.NewPattern("Uniform", h, servers, seed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fault drill on %s (%d links), escape root %d\n\n", h, h.Links(), root)

	// Drill 1: growing random failures, as isolated faults accumulate
	// between repair windows.
	fmt.Println("drill 1: random link failures (OmniSP vs PolSP, full offered load)")
	seq := hyperx.RandomFaultSequence(h, seed)
	for _, faults := range []int{0, 10, 20, 30} {
		net := hyperx.NewNetwork(h, hyperx.NewFaultSet(seq[:faults]...))
		g := net.Graph()
		if !g.Connected() {
			fmt.Printf("  %3d faults: network disconnected, drill over\n", faults)
			break
		}
		diam, _ := g.Diameter()
		fmt.Printf("  %3d faults (diameter %d):", faults, diam)
		for _, name := range []string{"OmniSP", "PolSP"} {
			res := run(net, name, root, pattern)
			fmt.Printf("  %s %.3f (escape %4.1f%%)", name, res.AcceptedLoad, 100*res.EscapeFraction)
		}
		fmt.Println()
	}

	// Drill 2: the structured shapes, deliberately centred on the escape
	// root — the worst case the paper constructs.
	fmt.Println("\ndrill 2: structured fault shapes centred on the escape root")
	for _, kind := range []hyperx.ShapeKind{hyperx.ShapeRow, hyperx.ShapeSubBlock, hyperx.ShapeCross} {
		edges, err := hyperx.PaperShape(h, root, kind)
		if err != nil {
			log.Fatal(err)
		}
		net := hyperx.NewNetwork(h, hyperx.NewFaultSet(edges...))
		fmt.Printf("  %-8s (%2d links):", kind.PaperName(3), len(edges))
		for _, name := range []string{"OmniSP", "PolSP"} {
			res := run(net, name, root, pattern)
			fmt.Printf("  %s %.3f (escape %4.1f%%)", name, res.AcceptedLoad, 100*res.EscapeFraction)
		}
		fmt.Println()
	}

	fmt.Println("\nconclusion: throughput degrades smoothly; no drill disconnects traffic.")
}

func run(net *hyperx.Network, mechName string, root int32, pattern hyperx.Pattern) *hyperx.Result {
	mech, err := hyperx.NewMechanism(mechName, net, vcs, root)
	if err != nil {
		log.Fatal(err)
	}
	res, err := hyperx.Run(hyperx.RunOptions{
		Net:              net,
		ServersPerSwitch: servers,
		Mechanism:        mech,
		Pattern:          pattern,
		Load:             1.0,
		WarmupCycles:     1000,
		MeasureCycles:    2000,
		Seed:             seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}
