// Escapeanatomy dissects SurePath's escape subnetwork on a small HyperX:
// it classifies links into Up/Down ("black") and horizontal shortcut
// ("red") classes, compares the three escape legality rules — the paper's
// literal Up/Down-distance table, the provably deadlock-free phased
// refinement, and the shortcut-free tree baseline — and runs the
// channel-dependency-graph deadlock check on each.
//
// The punchline reproduces this project's main reproduction finding: the
// literal table rule of Section 3.2 admits dependency cycles, while the
// phased refinement is cycle-free with the shortcuts intact.
package main

import (
	"fmt"
	"log"

	hyperx "repro"
	"repro/internal/escape"
)

func main() {
	h, err := hyperx.NewTopology(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	net := hyperx.NewNetwork(h, nil)
	root := h.ID([]int{0, 0})

	fmt.Printf("escape subnetwork anatomy on %s, root (0,0)\n\n", h)

	sub, err := escape.Build(net, root)
	if err != nil {
		log.Fatal(err)
	}

	// Link classification (the colours of the paper's Figure 2).
	black, red := 0, 0
	for _, e := range h.Edges() {
		if sub.IsHorizontal(e.U, e.V) {
			red++
		} else {
			black++
		}
	}
	fmt.Printf("links: %d Up/Down (black), %d horizontal shortcuts (red)\n", black, red)

	// Level population.
	levels := map[int32]int{}
	maxLevel := int32(0)
	for sw := int32(0); sw < int32(h.Switches()); sw++ {
		l := sub.Level(sw)
		levels[l]++
		if l > maxLevel {
			maxLevel = l
		}
	}
	for l := int32(0); l <= maxLevel; l++ {
		fmt.Printf("level %d: %d switches\n", l, levels[l])
	}

	// The paper's Figure 2 example distances.
	from, to := h.ID([]int{0, 1}), h.ID([]int{0, 3})
	fmt.Printf("\nUp/Down distance (0,1)->(0,3) over black links: %d (the red link shortcuts it to 1 hop)\n",
		sub.UpDownDist(from, to))

	// Deadlock analysis of the three rules.
	fmt.Println("\nchannel-dependency-graph analysis:")
	for _, rule := range []hyperx.EscapeRule{hyperx.RuleUDTable, hyperx.RulePhased, hyperx.RuleTree} {
		s, err := escape.BuildWithRule(net, root, rule)
		if err != nil {
			log.Fatal(err)
		}
		ok, cycle := s.CheckDeadlockFree()
		if ok {
			fmt.Printf("  %-8s acyclic: deadlock-free with a single escape buffer per port\n", rule)
		} else {
			fmt.Printf("  %-8s CYCLIC: e.g. through switches %v (single-buffer deadlock possible)\n", rule, cycle)
		}
	}

	// The same analysis under a harsh fault shape.
	edges, err := hyperx.PaperShape(h, root, hyperx.ShapeCross)
	if err != nil {
		log.Fatal(err)
	}
	faulty := hyperx.NewNetwork(h, hyperx.NewFaultSet(edges...))
	s, err := escape.BuildWithRule(faulty, root, hyperx.RulePhased)
	if err != nil {
		log.Fatal(err)
	}
	ok, _ := s.CheckDeadlockFree()
	fmt.Printf("\nwith the Cross shape (%d faults) centred on the root: phased rule acyclic = %v\n",
		len(edges), ok)
}
