package hyperx

import (
	"fmt"
	"log"
	"testing"
)

// TestPublicAPIRoundTrip exercises the whole facade the way a downstream
// user would: topology, faults, mechanism, pattern, run.
func TestPublicAPIRoundTrip(t *testing.T) {
	h, err := NewTopology(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	seq := RandomFaultSequence(h, 3)
	net := NewNetwork(h, NewFaultSet(seq[:4]...))
	if !net.Graph().Connected() {
		t.Skip("fault draw disconnected")
	}
	mech, err := NewMechanism("PolSP", net, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	pat, err := NewPattern("RSP", h, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(RunOptions{
		Net: net, ServersPerSwitch: 4, Mechanism: mech, Pattern: pat,
		Load: 0.4, WarmupCycles: 800, MeasureCycles: 1600, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AcceptedLoad < 0.3 {
		t.Errorf("accepted %.3f at offered 0.4 under 4 faults", res.AcceptedLoad)
	}
	if res.JainIndex <= 0 || res.JainIndex > 1 {
		t.Errorf("Jain %.4f out of range", res.JainIndex)
	}
}

func TestFacadeNames(t *testing.T) {
	if len(MechanismNames()) != 6 {
		t.Error("MechanismNames must list the paper's six mechanisms")
	}
	if len(PatternNames(3)) != 4 || len(PatternNames(2)) != 4 {
		t.Errorf("PatternNames lengths: %d/%d", len(PatternNames(2)), len(PatternNames(3)))
	}
	cfg := DefaultConfig()
	if cfg.InputBufPkts != 8 || cfg.PacketPhits != 16 {
		t.Error("DefaultConfig does not match Table 2")
	}
}

func TestFacadeShapes(t *testing.T) {
	h, _ := NewTopology(8, 8)
	for _, kind := range []ShapeKind{ShapeRow, ShapeSubBlock, ShapeCross} {
		edges, err := PaperShape(h, 0, kind)
		if err != nil || len(edges) == 0 {
			t.Errorf("%v: %v (%d edges)", kind, err, len(edges))
		}
	}
}

func TestFacadeSurePathOptions(t *testing.T) {
	h, _ := NewTopology(4, 4)
	net := NewNetwork(h, nil)
	mech, err := NewMechanism("OmniSP", net, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	sp, ok := mech.(*SurePath)
	if !ok {
		t.Fatal("OmniSP is not a *SurePath")
	}
	if sp.Root() != 5 {
		t.Errorf("root %d, want 5", sp.Root())
	}
	if sp.Escape().RuleUsed() != RulePhased {
		t.Error("default escape rule is not RulePhased")
	}
}

func TestFacadeOtherTopologies(t *testing.T) {
	tor, err := NewTorus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	df, err := NewDragonfly(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, topology := range []Switched{tor, df} {
		net := NewNetwork(topology, nil)
		mech, err := NewMechanism("PolSP", net, 4, 0)
		if err != nil {
			t.Fatalf("%s: %v", topology, err)
		}
		pat, err := NewUniformPattern(topology.Switches() * 2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(RunOptions{
			Net: net, ServersPerSwitch: 2, Mechanism: mech, Pattern: pat,
			Load: 0.1, WarmupCycles: 400, MeasureCycles: 1200, Seed: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", topology, err)
		}
		if res.AcceptedLoad < 0.07 {
			t.Errorf("%s accepted %.3f at offered 0.1", topology, res.AcceptedLoad)
		}
	}
	if _, err := NewTorus(2); err == nil {
		t.Error("invalid torus accepted")
	}
	if _, err := NewDragonfly(0, 0); err == nil {
		t.Error("invalid dragonfly accepted")
	}
}

func TestFacadeCustomSurePath(t *testing.T) {
	h, _ := NewTopology(4, 4)
	net := NewNetwork(h, nil)
	// Custom SurePath over DAL with the literal escape rule and a pinned
	// root, through the facade options.
	dal, err := NewDALAlgorithm(net)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSurePath(net, dal, 3, WithRoot(7), WithEscapeRule(RuleUDTable))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name() != "DALSP" || sp.Root() != 7 || sp.Escape().RuleUsed() != RuleUDTable {
		t.Errorf("custom SurePath config wrong: %s root=%d rule=%v",
			sp.Name(), sp.Root(), sp.Escape().RuleUsed())
	}
	seq := RandomFaultSequence(h, 4)
	if len(seq) != h.Links() {
		t.Errorf("fault sequence %d, want %d", len(seq), h.Links())
	}
}

// Example demonstrates the quickstart flow; the output is deterministic
// per seed.
func Example() {
	h, err := NewTopology(4, 4)
	if err != nil {
		log.Fatal(err)
	}
	net := NewNetwork(h, nil)
	mech, err := NewMechanism("PolSP", net, 4, 0)
	if err != nil {
		log.Fatal(err)
	}
	pat, err := NewPattern("Uniform", h, 4, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := Run(RunOptions{
		Net: net, ServersPerSwitch: 4, Mechanism: mech, Pattern: pat,
		Load: 0.25, WarmupCycles: 1000, MeasureCycles: 4000, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accepted within 10%% of offered: %v\n", res.AcceptedLoad > 0.225 && res.AcceptedLoad < 0.275)
	// Output:
	// accepted within 10% of offered: true
}
