// Package hyperx is the public API of the SurePath reproduction: HyperX
// (Hamming graph) topologies, the routing mechanisms of the paper
// "Achieving High-Performance Fault-Tolerant Routing in HyperX
// Interconnection Networks" (Camarero, Cano, Martínez, Beivide — SC 2024),
// fault models, synthetic traffic patterns, and a cycle-level
// virtual-cut-through simulator to evaluate them.
//
// Quick start:
//
//	h, _ := hyperx.NewTopology(8, 8)
//	net := hyperx.NewNetwork(h, nil)
//	mech, _ := hyperx.NewMechanism("PolSP", net, 4, 0)
//	pat, _ := hyperx.NewPattern("Uniform", h, 8, 1)
//	res, _ := hyperx.Run(hyperx.RunOptions{
//	    Net: net, ServersPerSwitch: 8, Mechanism: mech, Pattern: pat,
//	    Load: 0.5, WarmupCycles: 2000, MeasureCycles: 4000, Seed: 1,
//	})
//	fmt.Println(res.AcceptedLoad, res.AvgLatency, res.JainIndex)
//
// The full experiment drivers that regenerate every table and figure of
// the paper live behind the Fig*/Table*/Sweep helpers and the
// cmd/experiments binary.
package hyperx

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/escape"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// Topology is an n-dimensional HyperX (Hamming graph).
type Topology = topo.HyperX

// Network is a topology plus a set of failed links.
type Network = topo.Network

// FaultSet is a set of failed links.
type FaultSet = topo.FaultSet

// Edge is an undirected link between two switches.
type Edge = topo.Edge

// Graph is an immutable undirected graph with BFS-based metrics.
type Graph = topo.Graph

// ShapeKind names a structured fault configuration (Row, SubBlock, Cross).
type ShapeKind = topo.ShapeKind

// The structured fault shapes of the paper's Section 6.
const (
	ShapeRow      = topo.ShapeRow
	ShapeSubBlock = topo.ShapeSubBlock
	ShapeCross    = topo.ShapeCross
)

// Mechanism is a routing mechanism: a routing algorithm paired with a VC
// management.
type Mechanism = routing.Mechanism

// Algorithm is a raw routing algorithm (next-hop candidates without VC
// policy), the form SurePath consumes.
type Algorithm = routing.Algorithm

// SurePath is the paper's fault-tolerant routing mechanism.
type SurePath = core.SurePath

// EscapeRule selects the escape subnetwork legality rule.
type EscapeRule = escape.Rule

// Escape rules: RulePhased (provably deadlock-free refinement, default),
// RuleUDTable (the paper's literal table rule, whose channel dependency
// graph has cycles — see EXPERIMENTS.md), and RuleTree (the shortcut-free
// AutoNet-style baseline used by the ablation).
const (
	RulePhased  = escape.RulePhased
	RuleUDTable = escape.RuleUDTable
	RuleTree    = escape.RuleTree
)

// Pattern generates message destinations.
type Pattern = traffic.Pattern

// Servers describes the server numbering of a network.
type Servers = traffic.Servers

// RunOptions configures one simulation run.
type RunOptions = sim.RunOptions

// Result carries the paper's metrics for one run.
type Result = sim.Result

// Config carries the microarchitectural parameters of the paper's Table 2.
type Config = sim.Config

// MemStats is the engine's memory accounting: arena bytes at construction
// plus the per-run staging high-water mark (see RunOptions.MemStats and
// the CLIs' -mem-stats flag).
type MemStats = sim.MemStats

// MeasureEngineMemory builds the engine for o and returns its arena
// accounting without running anything.
func MeasureEngineMemory(o RunOptions) (*MemStats, error) { return sim.MeasureEngineMemory(o) }

// SeriesPoint is one bucket of a throughput time series.
type SeriesPoint = metrics.SeriesPoint

// Scale selects between laptop-size and paper-size experiment topologies.
type Scale = experiments.Scale

// Experiment scales.
const (
	ScaleSmall = experiments.ScaleSmall
	ScaleFull  = experiments.ScaleFull
)

// Budget sizes experiment simulation windows.
type Budget = experiments.Budget

// Switched is the abstract switch-level topology; table-driven mechanisms
// (Minimal, Valiant, Polarized, SurePath) and the simulator run on any
// implementation, enabling the paper's Section 7 cross-topology study.
type Switched = topo.Switched

// Torus is a k-ary n-cube topology (Section 7 comparison substrate).
type Torus = topo.Torus

// Dragonfly is the canonical Dragonfly topology (Section 7 comparison
// substrate).
type Dragonfly = topo.Dragonfly

// NewTopology constructs a HyperX with the given sides (each >= 2).
func NewTopology(dims ...int) (*Topology, error) { return topo.NewHyperX(dims...) }

// NewTorus constructs a k-ary n-cube with the given sides (each >= 3).
func NewTorus(dims ...int) (*Torus, error) { return topo.NewTorus(dims...) }

// NewDragonfly constructs the balanced Dragonfly with a switches per group
// and h global ports per switch.
func NewDragonfly(a, h int) (*Dragonfly, error) { return topo.NewDragonfly(a, h) }

// NewNetwork pairs any switched topology with a fault set (nil means
// fault-free).
func NewNetwork(t Switched, faults *FaultSet) *Network { return topo.NewNetwork(t, faults) }

// NewFaultSet builds a fault set from failed links.
func NewFaultSet(edges ...Edge) *FaultSet { return topo.NewFaultSet(edges...) }

// RandomFaultSequence returns a seeded random ordering of all links; its
// prefixes model growing sets of isolated failures.
func RandomFaultSequence(h *Topology, seed uint64) []Edge {
	return topo.RandomFaultSequence(h, seed)
}

// PaperShape builds a structured fault shape (Row, Subplane/Subcube,
// Cross/Star) centred on root, scaled to the topology.
func PaperShape(h *Topology, root int32, kind ShapeKind) ([]Edge, error) {
	return topo.PaperShape(h, root, kind)
}

// NewMechanism constructs one of the paper's mechanisms by name: "Minimal",
// "Valiant", "OmniWAR", "Polarized", "DOR", "OmniSP" or "PolSP", with vcs
// virtual channels per port (the paper uses 2n). root pins the escape
// subnetwork root of the SurePath configurations.
func NewMechanism(name string, nw *Network, vcs int, root int32) (Mechanism, error) {
	return experiments.BuildMechanism(name, nw, vcs, root)
}

// NewSurePath builds a SurePath mechanism around a custom base algorithm.
func NewSurePath(nw *Network, alg Algorithm, totalVCs int, opts ...core.Option) (*SurePath, error) {
	return core.NewWithAlgorithm(nw, alg, totalVCs, opts...)
}

// NewDALAlgorithm builds the DAL routing algorithm (the original HyperX
// routing with per-dimension deroutes) for use with NewSurePath or a
// ladder.
func NewDALAlgorithm(nw *Network) (Algorithm, error) { return routing.NewDAL(nw) }

// WithRoot pins the SurePath escape root.
func WithRoot(root int32) core.Option { return core.WithRoot(root) }

// WithEscapeRule selects the SurePath escape legality rule.
func WithEscapeRule(rule EscapeRule) core.Option { return core.WithEscapeRule(rule) }

// NewPattern constructs a traffic pattern by name: "Uniform", "Random
// Server Permutation" (or "RSP"), "Dimension Complement Reverse" ("DCR"),
// "Regular Permutation to Neighbour" ("RPN").
func NewPattern(name string, h *Topology, serversPerSwitch int, seed uint64) (Pattern, error) {
	return experiments.BuildPattern(name, Servers{H: h, Per: serversPerSwitch}, seed)
}

// NewUniformPattern constructs the Uniform pattern for an explicit server
// count, usable with any Switched topology.
func NewUniformPattern(servers int) (Pattern, error) {
	return traffic.NewUniform(servers)
}

// Run simulates one configuration on the cycle-level engine.
func Run(o RunOptions) (*Result, error) { return sim.Run(o) }

// RunJobs executes n independent jobs on a bounded worker pool (workers < 1
// means one per CPU) and returns their results in job order: the substrate
// the experiment drivers parallelize on, exported for ad-hoc sweeps.
func RunJobs[T any](workers, n int, job func(index int) (T, error)) ([]T, error) {
	return experiments.RunJobs(workers, n, job)
}

// JobSeed derives the simulation seed of job index from a base seed; using
// it per grid point keeps parallel sweeps bit-identical for any worker
// count.
func JobSeed(seed uint64, index int) uint64 { return experiments.JobSeed(seed, index) }

// JobSpec is one experiment point as pure data: canonically hashable for
// result caching and serializable for distributed execution. Build specs
// directly (the zero value plus the fields you need) and run them with
// RunSpecs.
type JobSpec = experiments.JobSpec

// TopologySpec is the serializable shape of a switched topology.
type TopologySpec = topo.Spec

// TopologySpecOf describes a topology as a TopologySpec; Build round-trips.
func TopologySpecOf(t Switched) (TopologySpec, error) { return topo.SpecOf(t) }

// RunSpecs executes a grid of job specs on a bounded worker pool (workers
// < 1 means one per CPU), through the installed result cache and executor,
// and returns results in spec order — bit-identical for any worker count.
func RunSpecs(workers int, specs []JobSpec) ([]*Result, error) {
	return experiments.ExecuteJobs(workers, specs)
}

// ResultCache is a content-addressed on-disk store of simulation results.
type ResultCache = cache.Store

// OpenResultCache opens (creating if needed) a result cache directory.
func OpenResultCache(dir string) (*ResultCache, error) { return cache.Open(dir) }

// SetResultCache installs a result cache consulted by every RunSpecs job;
// nil uninstalls. Caching never changes results: keys cover every semantic
// spec field plus the engine version.
func SetResultCache(c *ResultCache) { experiments.SetResultCache(c) }

// CacheStats reports the installed cache's cumulative hit/miss counts.
func CacheStats() (hits, misses int64) { return experiments.CacheStats() }

// CheckpointPolicy configures mid-run checkpointing of spec runs: Every
// is the wall-clock snapshot interval, EveryCycles a simulated-cycle
// interval (either at or below zero is disabled).
type CheckpointPolicy = experiments.CheckpointPolicy

// SetCheckpointPolicy makes every RunSpecs job checkpoint its engine
// state through the installed checkpoint store (SetCheckpointStore, or
// the result cache as its fallback): runs resume from a stored snapshot
// when one exists and drop it on completion. Checkpointing never changes
// results — a resumed run is bit-identical to an uninterrupted one. nil
// uninstalls.
func SetCheckpointPolicy(p *CheckpointPolicy) { experiments.SetCheckpointPolicy(p) }

// SetCheckpointStore keeps checkpoint snapshots in a dedicated store
// (the CLIs' -checkpoint-dir) instead of the result cache; nil reverts
// to the result cache.
func SetCheckpointStore(s *ResultCache) { experiments.SetCheckpointStore(s) }

// RequestDrain makes every in-flight checkpointed run stop at its next
// inter-cycle point, persist a final snapshot, and return
// ErrCheckpointed — the SIGTERM path of a preemptible process. The
// signal is one-way and process-wide.
func RequestDrain() { experiments.RequestDrain() }

// ErrCheckpointed reports a run that stopped on RequestDrain after
// persisting its snapshot; re-running the same spec resumes it.
var ErrCheckpointed = sim.ErrCheckpointed

// SetRunWorkers fixes the intra-run worker count of every spec simulation.
func SetRunWorkers(n int) { experiments.SetDefaultRunWorkers(n) }

// SetAdaptiveRunWorkers derives each spec simulation's intra-run worker
// count from its switch count and the CPUs the grid pool leaves free.
func SetAdaptiveRunWorkers() { experiments.SetAdaptiveRunWorkers() }

// SetEngineActivity toggles the engine's dirty-switch tracking and
// idle-cycle fast-forward for every spec simulation (default on). Purely a
// performance A/B knob — results are bit-identical either way.
func SetEngineActivity(enabled bool) { experiments.SetEngineActivity(enabled) }

// SetLegacyGeneration switches every simulation in this process to the
// legacy per-cycle open-loop generation (true) instead of the geometric
// arrival calendar. Unlike the knobs above this is semantic — the two
// engines produce statistically equivalent but bit-different results — so
// it also switches the version tag the result cache and the distribution
// handshake use (LegacyEngineVersion vs EngineVersion).
func SetLegacyGeneration(on bool) { sim.SetLegacyGeneration(on) }

// EngineVersion tags the simulation semantics of this build; it is folded
// into every result-cache key and checked by the distribution handshake.
const EngineVersion = sim.EngineVersion

// LegacyEngineVersion tags the per-cycle-generation engine reproduced by
// SetLegacyGeneration(true) (the CLIs' -legacy-gen).
const LegacyEngineVersion = sim.LegacyEngineVersion

// DefaultWorkers resolves a worker-count setting: any value below 1 selects
// one worker per available CPU.
func DefaultWorkers(workers int) int { return experiments.DefaultWorkers(workers) }

// DefaultConfig returns the paper's Table 2 simulation parameters.
func DefaultConfig() Config { return sim.DefaultConfig() }

// MechanismNames lists the six mechanisms of the paper's Table 4.
func MechanismNames() []string { return experiments.MechanismNames() }

// PatternNames lists the patterns of the paper's Section 4 for a topology
// dimensionality.
func PatternNames(ndims int) []string { return experiments.PatternNames(ndims) }
